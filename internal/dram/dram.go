// Package dram models the DRAM texture memory behind the cache: a
// synchronous DRAM with open-row (page-mode) banks, row activate /
// column access / precharge timing, and burst transfers over a fixed-
// width bus. It substantiates two claims of Section 3.2: that "block
// transfers of cache lines ... make it possible to get the most
// bandwidth out of the memory" because long bursts amortize setup
// costs, and that present-day DRAMs are "optimized for long burst
// transfers".
//
// The model replays the cache's line-fill stream: each fill opens (or
// reuses) the addressed row in its bank, then bursts the line across
// the bus. Consecutive fills from the same row hit the open page and
// skip the activate/precharge penalty — exactly why blocked texture
// layouts, whose misses walk memory densely, also behave better at the
// DRAM than layouts whose misses scatter.
package dram

import "fmt"

// Timing describes the DRAM part and bus. The default models a late-90s
// 100 MHz SDRAM with a 64-bit bus: 800 MB/s raw, pages of 2 KB, and
// 3-3-3 activate/CAS/precharge timing.
type Timing struct {
	// ClockHz is the memory bus clock.
	ClockHz float64
	// BusBytes is the data bus width in bytes per cycle.
	BusBytes int
	// RowBytes is the DRAM page (open row) size in bytes.
	RowBytes int
	// Banks is the number of independent banks.
	Banks int
	// TRCD is the activate-to-column delay in cycles.
	TRCD int
	// TCAS is the column access latency in cycles.
	TCAS int
	// TRP is the precharge time in cycles, paid when closing a row.
	TRP int
}

// Default returns the reference SDRAM described above.
func Default() Timing {
	return Timing{
		ClockHz:  100e6,
		BusBytes: 8,
		RowBytes: 2 << 10,
		Banks:    4,
		TRCD:     3,
		TCAS:     3,
		TRP:      3,
	}
}

// Validate reports whether the timing is usable.
func (t Timing) Validate() error {
	if t.ClockHz <= 0 || t.BusBytes <= 0 || t.RowBytes <= 0 || t.Banks <= 0 {
		return fmt.Errorf("dram: non-positive timing parameter: %+v", t)
	}
	if t.TRCD < 0 || t.TCAS < 0 || t.TRP < 0 {
		return fmt.Errorf("dram: negative latency: %+v", t)
	}
	return nil
}

// transferCycles is the burst time for lineBytes on the bus.
func (t Timing) transferCycles(lineBytes int) int {
	return (lineBytes + t.BusBytes - 1) / t.BusBytes
}

// FillCycles returns the cycles one line fill takes: a page hit pays
// only CAS plus the burst; a page miss adds precharge and activate.
func (t Timing) FillCycles(lineBytes int, pageHit bool) int {
	c := t.TCAS + t.transferCycles(lineBytes)
	if !pageHit {
		c += t.TRP + t.TRCD
	}
	return c
}

// Stats accumulates the fill-stream measurements.
type Stats struct {
	Fills      uint64
	PageHits   uint64
	Cycles     uint64
	BytesMoved uint64
	BusyCycles uint64 // cycles the data bus actually carried data
}

// PageHitRate returns the fraction of fills that hit an open row.
func (s Stats) PageHitRate() float64 {
	if s.Fills == 0 {
		return 0
	}
	return float64(s.PageHits) / float64(s.Fills)
}

// BusUtilization returns data-carrying cycles over total cycles — the
// fraction of the raw bandwidth the fill stream extracts.
func (s Stats) BusUtilization() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Cycles)
}

// AvgFillCycles returns the mean fill latency.
func (s Stats) AvgFillCycles() float64 {
	if s.Fills == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Fills)
}

// Sim replays line fills against per-bank open-row state.
type Sim struct {
	timing    Timing
	lineBytes int
	openRow   []int64 // per bank; -1 = closed
	stats     Stats
}

// NewSim returns a simulator for the given part and cache line size.
func NewSim(t Timing, lineBytes int) (*Sim, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if lineBytes <= 0 {
		return nil, fmt.Errorf("dram: line size %d", lineBytes)
	}
	s := &Sim{timing: t, lineBytes: lineBytes, openRow: make([]int64, t.Banks)}
	for i := range s.openRow {
		s.openRow[i] = -1
	}
	return s, nil
}

// Fill services one cache line fill at the given byte address and
// returns whether it hit an open page.
func (s *Sim) Fill(byteAddr uint64) bool {
	rowID := int64(byteAddr / uint64(s.timing.RowBytes))
	bank := int(rowID % int64(s.timing.Banks))
	row := rowID / int64(s.timing.Banks)

	hit := s.openRow[bank] == row
	s.openRow[bank] = row

	s.stats.Fills++
	if hit {
		s.stats.PageHits++
	}
	s.stats.Cycles += uint64(s.timing.FillCycles(s.lineBytes, hit))
	s.stats.BusyCycles += uint64(s.timing.transferCycles(s.lineBytes))
	s.stats.BytesMoved += uint64(s.lineBytes)
	return hit
}

// Stats returns the accumulated measurements.
func (s *Sim) Stats() Stats { return s.stats }

// EffectiveBandwidth returns the bytes per second the fill stream
// achieved, versus Raw bandwidth of the bus.
func (s *Sim) EffectiveBandwidth() float64 {
	if s.stats.Cycles == 0 {
		return 0
	}
	secs := float64(s.stats.Cycles) / s.timing.ClockHz
	return float64(s.stats.BytesMoved) / secs
}

// RawBandwidth returns the bus's peak bytes per second.
func (s *Sim) RawBandwidth() float64 {
	return s.timing.ClockHz * float64(s.timing.BusBytes)
}
