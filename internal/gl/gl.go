// Package gl provides a minimal immediate-mode command interface in the
// style of the 1990s GL APIs, together with a textual command-trace
// format. It reproduces the paper's second methodology component
// (Section 4.1): "a capability to trace the GL calls that are made by a
// graphics application ... the trace is then fed to our software
// implementation of the graphics pipeline which executes equivalent
// procedures".
//
// An application issues BindTexture / Begin / Color / Normal / TexCoord /
// Vertex / End calls against any API implementation: Context executes
// them on the software pipeline, Recorder serializes them as a line-based
// trace, and Replay drives an API from such a trace. Tee fans calls out,
// so a run can render and record simultaneously — exactly the gldebug
// arrangement.
package gl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"texcache/internal/geom"
	"texcache/internal/pipeline"
	"texcache/internal/vecmath"
)

// API is the immediate-mode command set. Implementations must tolerate
// calls in any order; semantic errors surface via Err.
type API interface {
	// BindTexture selects the texture for subsequent triangles; negative
	// disables texturing.
	BindTexture(id int)
	// Begin starts a triangle list.
	Begin()
	// Color latches the current vertex color.
	Color(r, g, b float64)
	// Normal latches the current vertex normal.
	Normal(x, y, z float64)
	// TexCoord latches the current texture coordinates.
	TexCoord(u, v float64)
	// Vertex emits a vertex with the latched attributes; every third
	// vertex completes a triangle.
	Vertex(x, y, z float64)
	// End closes the triangle list.
	End()
	// Err returns the first semantic error, or nil.
	Err() error
}

// Context executes the command set on a renderer, drawing each completed
// triangle immediately in issue order (the paper's simulator renders
// triangles "in the same order that they are specified").
type Context struct {
	r     *pipeline.Renderer
	cam   pipeline.Camera
	model vecmath.Mat4

	cur     geom.Vertex
	tri     [3]geom.Vertex
	n       int
	texID   int
	inBegin bool
	err     error
}

// NewContext returns a context drawing into r with the given camera.
func NewContext(r *pipeline.Renderer, cam pipeline.Camera) *Context {
	c := &Context{r: r, cam: cam, model: vecmath.Identity(), texID: -1}
	c.cur.Color = vecmath.Vec3{X: 1, Y: 1, Z: 1}
	c.cur.Normal = vecmath.Vec3{Z: 1}
	return c
}

func (c *Context) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("gl: "+format, args...)
	}
}

// BindTexture implements API.
func (c *Context) BindTexture(id int) {
	if c.inBegin {
		c.fail("BindTexture inside Begin/End")
		return
	}
	c.texID = id
}

// Begin implements API.
func (c *Context) Begin() {
	if c.inBegin {
		c.fail("nested Begin")
		return
	}
	c.inBegin = true
	c.n = 0
}

// Color implements API.
func (c *Context) Color(r, g, b float64) { c.cur.Color = vecmath.Vec3{X: r, Y: g, Z: b} }

// Normal implements API.
func (c *Context) Normal(x, y, z float64) { c.cur.Normal = vecmath.Vec3{X: x, Y: y, Z: z} }

// TexCoord implements API.
func (c *Context) TexCoord(u, v float64) { c.cur.UV = vecmath.Vec2{X: u, Y: v} }

// Vertex implements API.
func (c *Context) Vertex(x, y, z float64) {
	if !c.inBegin {
		c.fail("Vertex outside Begin/End")
		return
	}
	c.cur.Pos = vecmath.Vec3{X: x, Y: y, Z: z}
	c.tri[c.n] = c.cur
	c.n++
	if c.n == 3 {
		c.n = 0
		m := geom.Mesh{Tris: []geom.Triangle{{V: c.tri, TexID: c.texID}}}
		c.r.DrawMesh(&m, c.model, c.cam)
	}
}

// End implements API.
func (c *Context) End() {
	if !c.inBegin {
		c.fail("End without Begin")
		return
	}
	if c.n != 0 {
		c.fail("End with %d dangling vertices", c.n)
	}
	c.inBegin = false
}

// Err implements API.
func (c *Context) Err() error { return c.err }

// Recorder serializes API calls as a line-based text trace.
type Recorder struct {
	w   *bufio.Writer
	err error
}

// NewRecorder returns a recorder writing to w; call Flush when done.
func NewRecorder(w io.Writer) *Recorder { return &Recorder{w: bufio.NewWriter(w)} }

func (r *Recorder) emit(format string, args ...any) {
	if r.err != nil {
		return
	}
	_, r.err = fmt.Fprintf(r.w, format+"\n", args...)
}

// BindTexture implements API.
func (r *Recorder) BindTexture(id int) { r.emit("bind %d", id) }

// Begin implements API.
func (r *Recorder) Begin() { r.emit("begin") }

// Color implements API.
func (r *Recorder) Color(cr, cg, cb float64) { r.emit("color %g %g %g", cr, cg, cb) }

// Normal implements API.
func (r *Recorder) Normal(x, y, z float64) { r.emit("normal %g %g %g", x, y, z) }

// TexCoord implements API.
func (r *Recorder) TexCoord(u, v float64) { r.emit("texcoord %g %g", u, v) }

// Vertex implements API.
func (r *Recorder) Vertex(x, y, z float64) { r.emit("vertex %g %g %g", x, y, z) }

// End implements API.
func (r *Recorder) End() { r.emit("end") }

// Err implements API.
func (r *Recorder) Err() error { return r.err }

// Flush writes any buffered trace output.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// tee fans every call out to multiple APIs.
type tee struct{ apis []API }

// Tee returns an API forwarding to all of apis, the gldebug arrangement
// of rendering while recording.
func Tee(apis ...API) API { return &tee{apis: apis} }

func (t *tee) BindTexture(id int) { t.each(func(a API) { a.BindTexture(id) }) }
func (t *tee) Begin()             { t.each(func(a API) { a.Begin() }) }
func (t *tee) Color(r, g, b float64) {
	t.each(func(a API) { a.Color(r, g, b) })
}
func (t *tee) Normal(x, y, z float64) { t.each(func(a API) { a.Normal(x, y, z) }) }
func (t *tee) TexCoord(u, v float64)  { t.each(func(a API) { a.TexCoord(u, v) }) }
func (t *tee) Vertex(x, y, z float64) { t.each(func(a API) { a.Vertex(x, y, z) }) }
func (t *tee) End()                   { t.each(func(a API) { a.End() }) }

func (t *tee) each(f func(API)) {
	for _, a := range t.apis {
		f(a)
	}
}

// Err returns the first error across the fan-out.
func (t *tee) Err() error {
	for _, a := range t.apis {
		if err := a.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Replay parses a recorded trace and issues its calls against dst,
// stopping at the first malformed line or API error.
func Replay(src io.Reader, dst API) error {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if err := replayLine(fields, dst); err != nil {
			return fmt.Errorf("gl: line %d: %w", lineNo, err)
		}
		if err := dst.Err(); err != nil {
			return fmt.Errorf("gl: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("gl: reading trace: %w", err)
	}
	return dst.Err()
}

func replayLine(fields []string, dst API) error {
	argf := func(n int) ([]float64, error) {
		if len(fields) != n+1 {
			return nil, fmt.Errorf("%s: want %d args, got %d", fields[0], n, len(fields)-1)
		}
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: arg %d: %v", fields[0], i+1, err)
			}
			out[i] = v
		}
		return out, nil
	}
	switch fields[0] {
	case "bind":
		a, err := argf(1)
		if err != nil {
			return err
		}
		dst.BindTexture(int(a[0]))
	case "begin":
		if len(fields) != 1 {
			return fmt.Errorf("begin takes no args")
		}
		dst.Begin()
	case "color":
		a, err := argf(3)
		if err != nil {
			return err
		}
		dst.Color(a[0], a[1], a[2])
	case "normal":
		a, err := argf(3)
		if err != nil {
			return err
		}
		dst.Normal(a[0], a[1], a[2])
	case "texcoord":
		a, err := argf(2)
		if err != nil {
			return err
		}
		dst.TexCoord(a[0], a[1])
	case "vertex":
		a, err := argf(3)
		if err != nil {
			return err
		}
		dst.Vertex(a[0], a[1], a[2])
	case "end":
		if len(fields) != 1 {
			return fmt.Errorf("end takes no args")
		}
		dst.End()
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
	return nil
}

// EmitMesh issues a mesh through the API as immediate-mode calls, the
// bridge from retained scenes to the command stream.
func EmitMesh(api API, m *geom.Mesh) {
	lastTex := -1 << 30
	inBegin := false
	for _, tr := range m.Tris {
		if tr.TexID != lastTex {
			if inBegin {
				api.End()
				inBegin = false
			}
			api.BindTexture(tr.TexID)
			lastTex = tr.TexID
		}
		if !inBegin {
			api.Begin()
			inBegin = true
		}
		for _, v := range tr.V {
			api.Color(v.Color.X, v.Color.Y, v.Color.Z)
			api.Normal(v.Normal.X, v.Normal.Y, v.Normal.Z)
			api.TexCoord(v.UV.X, v.UV.Y)
			api.Vertex(v.Pos.X, v.Pos.Y, v.Pos.Z)
		}
	}
	if inBegin {
		api.End()
	}
}
