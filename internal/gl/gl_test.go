package gl

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/geom"
	"texcache/internal/pipeline"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

func testRenderer(t *testing.T) (*pipeline.Renderer, pipeline.Camera) {
	t.Helper()
	r := pipeline.NewRenderer(32, 32)
	tex, err := texture.NewTexture(0, texture.Checker(16, 16, 4,
		texture.Texel{R: 255, A: 255}, texture.Texel{B: 255, A: 255}),
		texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 4}, texture.NewArena())
	if err != nil {
		t.Fatal(err)
	}
	r.Textures = []*texture.Texture{tex}
	cam := pipeline.LookAtCamera(vecmath.Vec3{Z: 2}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
		math.Pi/2, 1, 0.1, 10)
	return r, cam
}

// drawQuad issues a textured quad through the API.
func drawQuad(api API) {
	api.BindTexture(0)
	api.Begin()
	v := func(x, y, u, vv float64) {
		api.TexCoord(u, vv)
		api.Vertex(x, y, 0)
	}
	v(-1, -1, 0, 1)
	v(1, -1, 1, 1)
	v(1, 1, 1, 0)
	v(-1, -1, 0, 1)
	v(1, 1, 1, 0)
	v(-1, 1, 0, 0)
	api.End()
}

func TestContextDrawsTriangles(t *testing.T) {
	r, cam := testRenderer(t)
	ctx := NewContext(r, cam)
	drawQuad(ctx)
	if err := ctx.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Stats.TrianglesIn != 2 {
		t.Errorf("triangles = %d, want 2", r.Stats.TrianglesIn)
	}
	if r.Stats.FragmentsTextured == 0 {
		t.Error("no textured fragments")
	}
}

func TestContextErrors(t *testing.T) {
	r, cam := testRenderer(t)
	ctx := NewContext(r, cam)
	ctx.Vertex(0, 0, 0) // outside Begin
	if ctx.Err() == nil {
		t.Error("Vertex outside Begin accepted")
	}

	ctx2 := NewContext(r, cam)
	ctx2.Begin()
	ctx2.Begin()
	if ctx2.Err() == nil {
		t.Error("nested Begin accepted")
	}

	ctx3 := NewContext(r, cam)
	ctx3.End()
	if ctx3.Err() == nil {
		t.Error("End without Begin accepted")
	}

	ctx4 := NewContext(r, cam)
	ctx4.Begin()
	ctx4.Vertex(0, 0, 0)
	ctx4.End()
	if ctx4.Err() == nil {
		t.Error("dangling vertices accepted")
	}

	ctx5 := NewContext(r, cam)
	ctx5.Begin()
	ctx5.BindTexture(1)
	if ctx5.Err() == nil {
		t.Error("BindTexture inside Begin accepted")
	}
}

func TestRecordReplayMatchesDirect(t *testing.T) {
	// Render directly and via record->replay; the texel traces must be
	// identical (the paper's correctness check for trace interpretation).
	direct, cam := testRenderer(t)
	trDirect := cache.NewTrace(0)
	direct.Sink = trDirect
	drawQuad(NewContext(direct, cam))

	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	drawQuad(rec)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	replayed, cam2 := testRenderer(t)
	trReplay := cache.NewTrace(0)
	replayed.Sink = trReplay
	if err := Replay(&buf, NewContext(replayed, cam2)); err != nil {
		t.Fatal(err)
	}

	if len(trDirect.Addrs) == 0 || len(trDirect.Addrs) != len(trReplay.Addrs) {
		t.Fatalf("trace lengths differ: %d vs %d", len(trDirect.Addrs), len(trReplay.Addrs))
	}
	for i := range trDirect.Addrs {
		if trDirect.Addrs[i] != trReplay.Addrs[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestTeeRendersAndRecords(t *testing.T) {
	r, cam := testRenderer(t)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	api := Tee(NewContext(r, cam), rec)
	drawQuad(api)
	if err := api.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Stats.TrianglesIn != 2 {
		t.Error("tee did not render")
	}
	if !strings.Contains(buf.String(), "begin") || !strings.Contains(buf.String(), "vertex") {
		t.Error("tee did not record")
	}
}

func TestReplayRejectsMalformed(t *testing.T) {
	r, cam := testRenderer(t)
	cases := []string{
		"frobnicate 1 2 3",
		"vertex 1 2",   // wrong arity
		"vertex a b c", // bad float
		"begin 7",      // begin takes no args
		"end extra",    // end takes no args
		"vertex 0 0 0", // semantic error: outside begin
	}
	for _, src := range cases {
		if err := Replay(strings.NewReader(src), NewContext(r, cam)); err == nil {
			t.Errorf("malformed trace %q accepted", src)
		}
	}
}

func TestReplaySkipsCommentsAndBlanks(t *testing.T) {
	r, cam := testRenderer(t)
	src := "# a comment\n\nbind 0\nbegin\nend\n"
	if err := Replay(strings.NewReader(src), NewContext(r, cam)); err != nil {
		t.Fatal(err)
	}
}

func TestEmitMeshRoundTrip(t *testing.T) {
	// A mesh pushed through EmitMesh renders identically to DrawMesh.
	mesh := geom.Quad(2, 2, 0)

	direct, cam := testRenderer(t)
	trDirect := cache.NewTrace(0)
	direct.Sink = trDirect
	direct.DrawMesh(mesh, vecmath.Identity(), cam)

	viaGL, cam2 := testRenderer(t)
	trGL := cache.NewTrace(0)
	viaGL.Sink = trGL
	ctx := NewContext(viaGL, cam2)
	EmitMesh(ctx, mesh)
	if err := ctx.Err(); err != nil {
		t.Fatal(err)
	}

	if len(trDirect.Addrs) == 0 || len(trDirect.Addrs) != len(trGL.Addrs) {
		t.Fatalf("trace lengths differ: %d vs %d", len(trDirect.Addrs), len(trGL.Addrs))
	}
	for i := range trDirect.Addrs {
		if trDirect.Addrs[i] != trGL.Addrs[i] {
			t.Fatalf("traces diverge at access %d", i)
		}
	}
}

func TestEmitMeshGroupsByTexture(t *testing.T) {
	m := &geom.Mesh{}
	m.Append(geom.Quad(1, 1, 0))
	m.Append(geom.Quad(1, 1, 1))
	m.Append(geom.Quad(1, 1, 1)) // same texture: no re-bind
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	EmitMesh(rec, m)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "bind "); got != 2 {
		t.Errorf("%d binds, want 2:\n%s", got, buf.String())
	}
}
