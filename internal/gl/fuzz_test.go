package gl

import (
	"math"
	"strings"
	"testing"

	"texcache/internal/pipeline"
	"texcache/internal/vecmath"
)

// FuzzReplay hardens the command-trace parser: arbitrary text must
// either replay cleanly or produce an error, never panic, and never draw
// through a broken state machine.
func FuzzReplay(f *testing.F) {
	f.Add("bind 0\nbegin\ntexcoord 0 0\nvertex 0 0 0\ntexcoord 1 0\nvertex 1 0 0\ntexcoord 0 1\nvertex 0 1 0\nend\n")
	f.Add("# comment\n\nbegin\nend\n")
	f.Add("vertex 1")
	f.Add("begin\nbegin")
	f.Add(strings.Repeat("color 1 1 1\n", 100))

	f.Fuzz(func(t *testing.T, src string) {
		r := pipeline.NewRenderer(8, 8)
		cam := pipeline.LookAtCamera(vecmath.Vec3{Z: 2}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
			math.Pi/2, 1, 0.1, 10)
		_ = Replay(strings.NewReader(src), NewContext(r, cam))
	})
}
