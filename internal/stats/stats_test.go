package stats

import (
	"testing"

	"texcache/internal/texture"
)

func ev(texID, level, tu, tv, ru, rv int, kind texture.AccessKind) texture.AccessEvent {
	return texture.AccessEvent{TexID: texID, Level: level, TU: tu, TV: tv,
		RawU: ru, RawV: rv, Kind: kind}
}

func TestAccessesPerTexel(t *testing.T) {
	l := NewLocality()
	// Texel (0,0) accessed 4 times, texel (1,0) accessed 2 times: 3 per texel.
	for i := 0; i < 4; i++ {
		l.Record(ev(0, 0, 0, 0, 0, 0, texture.AccessTrilinearLower))
	}
	for i := 0; i < 2; i++ {
		l.Record(ev(0, 0, 1, 0, 1, 0, texture.AccessTrilinearLower))
	}
	if got := l.AccessesPerTexel(texture.AccessTrilinearLower); got != 3 {
		t.Errorf("accesses/texel = %v, want 3", got)
	}
	if got := l.AccessesPerTexel(texture.AccessBilinear); got != 0 {
		t.Errorf("empty category = %v, want 0", got)
	}
	if l.TotalAccesses() != 6 {
		t.Errorf("total = %d", l.TotalAccesses())
	}
}

func TestKindsAreSeparate(t *testing.T) {
	l := NewLocality()
	l.Record(ev(0, 0, 0, 0, 0, 0, texture.AccessTrilinearLower))
	l.Record(ev(0, 1, 0, 0, 0, 0, texture.AccessTrilinearUpper))
	l.Record(ev(0, 1, 0, 0, 0, 0, texture.AccessTrilinearUpper))
	if l.Accesses(texture.AccessTrilinearLower) != 1 ||
		l.Accesses(texture.AccessTrilinearUpper) != 2 {
		t.Error("per-kind access counts wrong")
	}
	if got := l.AccessesPerTexel(texture.AccessTrilinearUpper); got != 2 {
		t.Errorf("upper accesses/texel = %v", got)
	}
}

func TestRepetitionFactor(t *testing.T) {
	l := NewLocality()
	// The same wrapped texel reached from three distinct pre-wrap
	// positions: repetition 3.
	l.Record(ev(0, 0, 5, 5, 5, 5, texture.AccessBilinear))
	l.Record(ev(0, 0, 5, 5, 5+16, 5, texture.AccessBilinear))
	l.Record(ev(0, 0, 5, 5, 5, 5+16, texture.AccessBilinear))
	if got := l.RepetitionFactor(); got != 3 {
		t.Errorf("repetition = %v, want 3", got)
	}
	// Without wrapping, factor is 1.
	l2 := NewLocality()
	l2.Record(ev(0, 0, 1, 1, 1, 1, texture.AccessBilinear))
	l2.Record(ev(0, 0, 2, 1, 2, 1, texture.AccessBilinear))
	if got := l2.RepetitionFactor(); got != 1 {
		t.Errorf("repetition = %v, want 1", got)
	}
}

func TestRepetitionHandlesNegativeRawCoords(t *testing.T) {
	l := NewLocality()
	l.Record(ev(0, 0, 15, 15, -1, -1, texture.AccessBilinear))
	l.Record(ev(0, 0, 15, 15, 15, 15, texture.AccessBilinear))
	if got := l.RepetitionFactor(); got != 2 {
		t.Errorf("repetition with negative raw = %v, want 2", got)
	}
}

func TestRunlength(t *testing.T) {
	l := NewLocality()
	// Texture 0 x3, texture 1 x2, texture 0 x1: three runs, 6 accesses.
	seq := []int{0, 0, 0, 1, 1, 0}
	for _, id := range seq {
		l.Record(ev(id, 0, 0, 0, 0, 0, texture.AccessBilinear))
	}
	if l.Runs() != 3 {
		t.Errorf("runs = %d, want 3", l.Runs())
	}
	if got := l.AverageRunlength(); got != 2 {
		t.Errorf("avg runlength = %v, want 2", got)
	}
	empty := NewLocality()
	if empty.AverageRunlength() != 0 {
		t.Error("empty runlength should be 0")
	}
}

func TestUniqueTexelsAcrossTexturesAndLevels(t *testing.T) {
	l := NewLocality()
	l.Record(ev(0, 0, 3, 3, 3, 3, texture.AccessTrilinearLower))
	l.Record(ev(0, 1, 3, 3, 3, 3, texture.AccessTrilinearUpper)) // other level
	l.Record(ev(1, 0, 3, 3, 3, 3, texture.AccessTrilinearLower)) // other texture
	l.Record(ev(0, 0, 3, 3, 3, 3, texture.AccessTrilinearLower)) // repeat
	if got := l.UniqueTexels(); got != 3 {
		t.Errorf("unique texels = %d, want 3", got)
	}
	if got := l.TextureUsedBytes(); got != 3*texture.TexelBytes {
		t.Errorf("texture used = %d", got)
	}
}

func TestTexelKeyInjective(t *testing.T) {
	seen := map[uint64][4]int{}
	for _, tex := range []int{0, 1, 63} {
		for _, level := range []int{0, 5, 11} {
			for x := -2; x < 40; x += 7 {
				for y := -2; y < 40; y += 7 {
					k := texelKey(tex, level, x, y)
					if prev, ok := seen[k]; ok {
						t.Fatalf("collision: %v and %v -> %d", prev, [4]int{tex, level, x, y}, k)
					}
					seen[k] = [4]int{tex, level, x, y}
				}
			}
		}
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	l := NewLocality()
	l.Record(ev(0, 0, 0, 0, 0, 0, texture.AccessTrilinearLower))
	s := l.Summary()
	for _, want := range []string{"accesses/texel", "repetition", "runlength", "unique texels"} {
		if !contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
