// Package stats implements the trace-level locality measurements of
// Sections 3.1.2 and 5.2.3: accesses per texel by interpolation category,
// texture repetition factors, texture runlengths, and the texture-used
// accounting behind Table 4.1.
package stats

import (
	"fmt"

	"texcache/internal/texture"
)

// texelKey packs (texID, level, x, y) into one map key. Coordinates are
// offset so slightly negative pre-wrap coordinates (from the -0.5 filter
// footprint shift) stay valid.
func texelKey(texID, level, x, y int) uint64 {
	const off = 1 << 19
	return uint64(texID)<<46 | uint64(level)<<40 |
		uint64(uint32(x+off))<<20&0xFFFFF00000 | uint64(uint32(y+off))&0xFFFFF
}

// Locality accumulates per-texel access statistics from sampler events.
// Attach Record as the pipeline's OnAccess callback.
type Locality struct {
	accesses [3]uint64          // indexed by texture.AccessKind
	distinct [3]map[uint64]bool // distinct wrapped texels per kind
	wrapped  map[uint64]bool    // distinct wrapped texels, all kinds
	unwrap   map[uint64]bool    // distinct pre-wrap texels, all kinds

	// Runlength tracking: a run is a maximal sequence of consecutive
	// accesses to the same texture.
	curTex   int
	runCount uint64
	total    uint64
}

// NewLocality returns an empty collector.
func NewLocality() *Locality {
	l := &Locality{
		wrapped: make(map[uint64]bool),
		unwrap:  make(map[uint64]bool),
		curTex:  -1,
	}
	for i := range l.distinct {
		l.distinct[i] = make(map[uint64]bool)
	}
	return l
}

// Record consumes one access event.
func (l *Locality) Record(e texture.AccessEvent) {
	k := int(e.Kind)
	l.accesses[k]++
	l.total++

	wk := texelKey(e.TexID, e.Level, e.TU, e.TV)
	l.distinct[k][wk] = true
	l.wrapped[wk] = true
	l.unwrap[texelKey(e.TexID, e.Level, e.RawU, e.RawV)] = true

	if e.TexID != l.curTex {
		l.curTex = e.TexID
		l.runCount++
	}
}

// AccessesPerTexel returns the average number of accesses per distinct
// texel for the given interpolation category — the Section 3.1.2
// measurement whose expected values are ~4 for the trilinear lower level,
// ~16 for the upper level, and scene-dependent for bilinear.
func (l *Locality) AccessesPerTexel(kind texture.AccessKind) float64 {
	d := len(l.distinct[kind])
	if d == 0 {
		return 0
	}
	return float64(l.accesses[kind]) / float64(d)
}

// Accesses returns the total access count for a category.
func (l *Locality) Accesses(kind texture.AccessKind) uint64 { return l.accesses[kind] }

// TotalAccesses returns all texel accesses recorded.
func (l *Locality) TotalAccesses() uint64 { return l.total }

// RepetitionFactor returns the average number of times a texel is reused
// through texture-coordinate wrapping: distinct pre-wrap texel positions
// divided by distinct in-image texels (1.0 = no repetition).
func (l *Locality) RepetitionFactor() float64 {
	if len(l.wrapped) == 0 {
		return 0
	}
	return float64(len(l.unwrap)) / float64(len(l.wrapped))
}

// UniqueTexels returns the number of distinct Mip Map texels touched.
func (l *Locality) UniqueTexels() int { return len(l.wrapped) }

// TextureUsedBytes returns the Table 4.1 "Texture Used" figure: the
// memory footprint of the distinct texels actually fetched.
func (l *Locality) TextureUsedBytes() int {
	return len(l.wrapped) * texture.TexelBytes
}

// AverageRunlength returns the mean length of maximal same-texture access
// runs (Section 5.2.3). Scenes that draw each texture's triangles
// consecutively exhibit runlengths in the hundreds of thousands.
func (l *Locality) AverageRunlength() float64 {
	if l.runCount == 0 {
		return 0
	}
	return float64(l.total) / float64(l.runCount)
}

// Runs returns the number of same-texture runs observed.
func (l *Locality) Runs() uint64 { return l.runCount }

// Summary formats the headline numbers for experiment output.
func (l *Locality) Summary() string {
	return fmt.Sprintf(
		"accesses/texel: lower=%.1f upper=%.1f bilinear=%.1f; repetition=%.2f; runlength=%.0f (%d runs); unique texels=%d",
		l.AccessesPerTexel(texture.AccessTrilinearLower),
		l.AccessesPerTexel(texture.AccessTrilinearUpper),
		l.AccessesPerTexel(texture.AccessBilinear),
		l.RepetitionFactor(),
		l.AverageRunlength(), l.runCount,
		l.UniqueTexels())
}
