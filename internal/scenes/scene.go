// Package scenes synthesizes the paper's four texture-mapping benchmarks
// (Table 4.1): Flight, Town, Guitar and Goblet. The original SGI
// RealityEngine demo content is not available, so each scene is generated
// procedurally to the published characteristics — image resolution,
// triangle count and size, number and size of textures, texture
// repetition, texture orientation on screen, and level-of-detail
// behavior — since those are the properties that determine the texel
// address stream the cache study measures.
package scenes

import (
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/cost"
	"texcache/internal/geom"
	"texcache/internal/obs"
	"texcache/internal/pipeline"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

// Scene is a renderable benchmark: geometry in draw order, camera, and
// the texture images (pyramids prebuilt, layouts bound at render time).
type Scene struct {
	Name          string
	Width, Height int
	Camera        pipeline.Camera
	Light         *pipeline.DirectionalLight
	Draws         []Draw
	Mips          []*texture.MipMap

	// DefaultOrder is the rasterization direction the paper reports
	// results with: vertical for Town (its worst case), horizontal for
	// the others (Section 5.2.3).
	DefaultOrder raster.Order

	// CullBack enables back-face culling, used by the closed-surface
	// scenes (Goblet, Town buildings).
	CullBack bool

	// CameraPath, when non-nil, animates the camera: CameraPath(t)
	// returns the camera t seconds into a smooth motion whose t=0 frame
	// is Camera. Used by the inter-frame temporal-locality study
	// (Section 3.1.2 discusses but does not measure frame-to-frame
	// reuse).
	CameraPath func(t float64) pipeline.Camera
}

// CameraAt returns the camera for time t along the scene's motion path
// (the static camera when the scene has none).
func (s *Scene) CameraAt(t float64) pipeline.Camera {
	if s.CameraPath == nil || t == 0 {
		return s.Camera
	}
	return s.CameraPath(t)
}

// Draw is one mesh with its model transform, drawn in slice order.
type Draw struct {
	Mesh  *geom.Mesh
	Model vecmath.Mat4
}

// RenderOptions selects the memory representation and traversal for one
// simulated frame.
type RenderOptions struct {
	Layout    texture.LayoutSpec
	Traversal raster.Traversal
	// Sink receives every texel address (nil to skip tracing).
	Sink cache.Sink
	// OnAccess observes logical texel touches (nil to skip).
	OnAccess func(texture.AccessEvent)
	// Counters accumulates Table 2.1 op counts (nil to skip).
	Counters *cost.Counters
	// FragmentMask restricts rendering to owned pixels (parallel
	// fragment-generator studies); nil renders everything.
	FragmentMask func(x, y int) bool
	// Time selects the camera position along the scene's motion path;
	// zero renders the canonical frame.
	Time float64
	// Workers above one rasterizes the frame's screen tiles on that
	// many goroutines; the texel address stream is merged back into the
	// exact serial order, so traces are bit-identical at any worker
	// count. Zero or one renders serially, as do frames with an
	// OnAccess or Counters consumer.
	Workers int
}

// Render draws one frame of the scene and returns the renderer, whose
// framebuffer and statistics reflect the frame. Textures are laid out in
// a fresh arena in texture-ID order, mirroring the paper's consecutive
// malloc() placement.
func (s *Scene) Render(opt RenderOptions) (*pipeline.Renderer, error) {
	r := pipeline.NewRenderer(s.Width, s.Height)
	r.Traversal = opt.Traversal
	r.Light = s.Light
	r.CullBack = s.CullBack
	r.Sink = opt.Sink
	r.OnAccess = opt.OnAccess
	r.Counters = opt.Counters
	r.FragmentMask = opt.FragmentMask
	r.RenderWorkers = opt.Workers
	// Size the parallel path's per-tile trace buffers from the same
	// scene-scale estimate Trace uses for the frame sink.
	r.TraceHint = s.traceSizeHint()

	arena := texture.NewArena()
	r.Textures = make([]*texture.Texture, len(s.Mips))
	for i, mip := range s.Mips {
		layout, err := texture.NewLayout(opt.Layout, mip.Dims(), arena)
		if err != nil {
			return nil, fmt.Errorf("scenes: laying out texture %d of %s: %w", i, s.Name, err)
		}
		r.Textures[i] = &texture.Texture{ID: i, Mip: mip, Layout: layout}
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	cam := s.CameraAt(opt.Time)
	for _, d := range s.Draws {
		r.DrawMesh(d.Mesh, d.Model, cam)
	}
	// Completes the tile-parallel pass when one is active (no-op for
	// serial frames), so the stats below always cover the whole frame.
	r.Finish()
	// Bulk-flush frame statistics to the attached registry — one update
	// per frame, never per fragment or texel.
	if reg := obs.Default(); reg != nil {
		rend := reg.Sub("render")
		rend.Counter("frames").Inc()
		rend.Counter("fragments").Add(r.Stats.FragmentsTextured)
		rend.Counter("texel_fetches").Add(r.TexelFetches())
		reg.Emit("frame.rendered", s.Name, int64(r.Stats.FragmentsTextured))
	}
	return r, nil
}

// traceSizeHint sizes a frame's trace preallocation from the screen
// area: trilinear filtering fetches eight texels per textured fragment,
// and partial coverage roughly offsets overdraw. Trace growth doubles,
// so an undershoot costs one copy, not a reallocation per append.
func (s *Scene) traceSizeHint() int {
	return s.Width * s.Height * 8
}

// Trace renders one frame and returns the recorded texel address trace,
// for replay through many cache configurations.
func (s *Scene) Trace(layout texture.LayoutSpec, trav raster.Traversal) (*cache.Trace, *pipeline.Renderer, error) {
	tr := cache.NewTrace(s.traceSizeHint())
	r, err := s.Render(RenderOptions{Layout: layout, Traversal: trav, Sink: tr})
	if err != nil {
		return nil, nil, err
	}
	return tr, r, nil
}

// TraceParallel is Trace with tile-parallel rasterization on the given
// number of workers (values below two render serially). The returned
// trace is bit-identical to Trace's at every worker count.
func (s *Scene) TraceParallel(layout texture.LayoutSpec, trav raster.Traversal, workers int) (*cache.Trace, *pipeline.Renderer, error) {
	tr := cache.NewTrace(s.traceSizeHint())
	r, err := s.Render(RenderOptions{Layout: layout, Traversal: trav, Sink: tr, Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	return tr, r, nil
}

// Layouts builds the scene's texture layouts in a fresh arena without
// rendering, in the same texture-ID order Render uses — so addresses in
// a trace recorded with the same spec resolve against them.
func (s *Scene) Layouts(spec texture.LayoutSpec) ([]texture.Layout, error) {
	arena := texture.NewArena()
	out := make([]texture.Layout, len(s.Mips))
	for i, mip := range s.Mips {
		l, err := texture.NewLayout(spec, mip.Dims(), arena)
		if err != nil {
			return nil, fmt.Errorf("scenes: laying out texture %d of %s: %w", i, s.Name, err)
		}
		out[i] = l
	}
	return out, nil
}

// TextureStorageBytes returns the total unpadded Mip Map footprint of the
// scene's textures (the Table 4.1 "Texture Storage" column).
func (s *Scene) TextureStorageBytes() int {
	n := 0
	for _, m := range s.Mips {
		n += m.SizeBytes()
	}
	return n
}

// Triangles returns the total triangle count of the draw list.
func (s *Scene) Triangles() int {
	n := 0
	for _, d := range s.Draws {
		n += d.Mesh.Len()
	}
	return n
}

// DefaultTraversal returns the untiled traversal in the scene's reported
// rasterization direction.
func (s *Scene) DefaultTraversal() raster.Traversal {
	return raster.Traversal{Order: s.DefaultOrder}
}

// Builder names a scene constructor, keyed by the lowercase scene name.
type Builder func(scale int) *Scene

// Builders returns the four benchmark constructors in the paper's
// presentation order.
func Builders() map[string]Builder {
	return map[string]Builder{
		"flight": Flight,
		"town":   Town,
		"guitar": Guitar,
		"goblet": Goblet,
	}
}

// Names returns the scene names in the paper's order.
func Names() []string { return []string{"flight", "town", "guitar", "goblet"} }

// UnknownSceneError reports a scene name that is not one of the four
// benchmarks.
type UnknownSceneError struct{ Name string }

func (e *UnknownSceneError) Error() string {
	return "texcache: unknown scene " + e.Name
}

// ByNameChecked builds the named scene at the given scale, returning an
// *UnknownSceneError instead of nil for names outside the benchmark set.
func ByNameChecked(name string, scale int) (*Scene, error) {
	if b, ok := Builders()[name]; ok {
		return b(scale), nil
	}
	return nil, &UnknownSceneError{Name: name}
}

// div scales a dimension down, keeping a floor of 1.
func div(n, scale int) int {
	if scale <= 1 {
		return n
	}
	v := n / scale
	if v < 1 {
		return 1
	}
	return v
}

// texDiv scales a power-of-two texture dimension down, flooring at 8
// texels so pyramids stay meaningful.
func texDiv(n, scale int) int {
	v := n
	for s := scale; s > 1; s /= 2 {
		v /= 2
	}
	if v < 8 {
		return 8
	}
	return v
}

// white is the untinted vertex color.
var white = vecmath.Vec3{X: 1, Y: 1, Z: 1}
