package scenes

import (
	"math"

	"texcache/internal/geom"
	"texcache/internal/pipeline"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

// Town synthesizes the Town benchmark: a street of texture-mapped
// building facades.
//
// Table 4.1 targets: 1280x1024 pixels, 5317 triangles (average 1149 px,
// 67x23), 51 smaller textures (4.7 MB storage), repetition factor ~2.9,
// and — the scene's defining property — textures that appear upright in
// the image, which makes vertical rasterization the worst case for the
// row-major nonblocked representation (Section 5.2.3).
func Town(scale int) *Scene {
	const (
		buildingsX, buildingsZ = 10, 7 // 70 buildings
		numTextures            = 51
		texSize                = 128
	)
	s := &Scene{
		Name:         "town",
		Width:        div(1280, scale),
		Height:       div(1024, scale),
		DefaultOrder: 1, // vertical: the paper's reported worst case
		CullBack:     true,
		Light: &pipeline.DirectionalLight{
			Dir:     vecmath.Vec3{X: -0.3, Y: -1, Z: -0.5},
			Ambient: 0.5,
			Diffuse: 0.5,
		},
	}

	ts := texDiv(texSize, scale)
	for i := 0; i < numTextures; i++ {
		var im *texture.Image
		switch i % 3 {
		case 0:
			im = texture.Brick(ts, ts)
		case 1:
			im = texture.Checker(ts, ts, 8,
				texture.Texel{R: 200, G: 190, B: 160, A: 255},
				texture.Texel{R: 90, G: 80, B: 70, A: 255})
		default:
			im = texture.Gradient(ts, ts,
				texture.Texel{R: 150, G: 150, B: 170, A: 255},
				texture.Texel{R: 60, G: 60, B: 90, A: 255})
		}
		s.Mips = append(s.Mips, texture.BuildMipMap(im))
	}

	// wall builds one vertically oriented facade tessellated into wide
	// 2x5 quads (20 triangles), with UV repetition ~1.7x1.7 = 2.9 texels
	// accessed per unique texel (the paper's Town repetition factor).
	wall := func(w, h float64, texID int) *geom.Mesh {
		m := &geom.Mesh{}
		const nx, ny = 2, 5
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x0 := -w/2 + w*float64(i)/nx
				x1 := -w/2 + w*float64(i+1)/nx
				y0 := h * float64(j) / ny
				y1 := h * float64(j+1) / ny
				uv := func(x, y float64) vecmath.Vec2 {
					return vecmath.Vec2{
						X: 1.7 * (x + w/2) / w,
						Y: 1.7 * (h - y) / h, // v runs down the facade: upright on screen
					}
				}
				v := func(x, y float64) geom.Vertex {
					return geom.Vertex{
						Pos:    vecmath.Vec3{X: x, Y: y},
						Normal: vecmath.Vec3{Z: 1},
						UV:     uv(x, y),
						Color:  white,
					}
				}
				m.AddQuad(v(x0, y0), v(x1, y0), v(x1, y1), v(x0, y1), texID)
			}
		}
		return m
	}

	// A building: four facades around a box footprint; triangles grouped
	// per building so same-texture triangles are drawn consecutively
	// (long texture runlengths, Section 5.2.3).
	const streetX, streetZ = 34.0, 44.0
	rng := newRand(0x70714)
	texID := 0
	tris := 0
	const maxTris = 5280 - 18 // leave room for the ground mesh
	for bz := 0; bz < buildingsZ && tris < maxTris; bz++ {
		for bx := 0; bx < buildingsX && tris < maxTris; bx++ {
			w := 20 + 10*rng.float()
			d := 14 + 8*rng.float()
			h := 24 + 26*rng.float()
			cx := (float64(bx) - buildingsX/2) * streetX
			cz := -float64(bz) * streetZ
			tid := texID % numTextures
			texID++

			f := wall(w, h, tid)
			bmesh := &geom.Mesh{}
			// Front (+Z), back (-Z), left (-X), right (+X).
			bmesh.Append(f.Transform(vecmath.Translate(vecmath.Vec3{X: cx, Z: cz + d/2})))
			bmesh.Append(f.Transform(vecmath.Translate(vecmath.Vec3{X: cx, Z: cz - d/2}).Mul(vecmath.RotateY(math.Pi))))
			side := wall(d, h, tid)
			bmesh.Append(side.Transform(vecmath.Translate(vecmath.Vec3{X: cx - w/2, Z: cz}).Mul(vecmath.RotateY(-math.Pi / 2))))
			bmesh.Append(side.Transform(vecmath.Translate(vecmath.Vec3{X: cx + w/2, Z: cz}).Mul(vecmath.RotateY(math.Pi / 2))))
			tris += bmesh.Len()
			s.Draws = append(s.Draws, Draw{Mesh: bmesh, Model: vecmath.Identity()})
		}
	}

	// Ground: a road plane under the town, textured with heavy repetition.
	ground := geom.Grid(3, 3, 420, 420, func(u, v float64) float64 { return 0 }, 0).
		UVScale(10, 10)
	s.Draws = append(s.Draws, Draw{
		Mesh:  ground,
		Model: vecmath.Translate(vecmath.Vec3{X: -210, Y: -0.2, Z: 70 - 420}),
	})

	// Street-level camera, level with the horizon (no roll/pitch), so the
	// vertical texture axes of the facades stay vertical on screen.
	eye := vecmath.Vec3{X: 3, Y: 11, Z: 48}
	at := vecmath.Vec3{X: 0, Y: 10, Z: -260}
	fovy := math.Pi / 2.6
	aspect := float64(s.Width) / float64(s.Height)
	s.Camera = pipeline.LookAtCamera(eye, at, vecmath.Vec3{Y: 1}, fovy, aspect, 1, 4000)
	// Motion path: drive down the street at 15 m/s.
	s.CameraPath = func(t float64) pipeline.Camera {
		off := vecmath.Vec3{Z: -15 * t}
		return pipeline.LookAtCamera(eye.Add(off), at.Add(off), vecmath.Vec3{Y: 1},
			fovy, aspect, 1, 4000)
	}
	return s
}

// rand32 is a tiny deterministic xorshift PRNG so scene synthesis is
// reproducible and independent of math/rand version changes.
type rand32 struct{ state uint64 }

func newRand(seed uint64) *rand32 {
	if seed == 0 {
		seed = 1
	}
	return &rand32{state: seed}
}

func (r *rand32) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

// float returns a uniform value in [0, 1).
func (r *rand32) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
