package scenes

import (
	"math"

	"texcache/internal/geom"
	"texcache/internal/pipeline"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

// Flight synthesizes the Flight benchmark: a flight simulator frame over
// mountainous terrain draped with large satellite-image textures.
//
// Table 4.1 targets: 1280x1024 pixels, 9152 triangles (average area 294,
// 38x20 px), 15 textures of 1024x1024 (56 MB storage), no texture
// repetition, and — the scene's defining property — large, rapid
// variations in level-of-detail from the mountainous relief, which raises
// the cold miss rate (Section 5.2.2).
func Flight(scale int) *Scene {
	const (
		patchesX, patchesZ = 5, 3   // one texture per patch -> 15 textures
		quadsX, quadsZ     = 17, 18 // per patch: 17*18*2 = 612 tris; x15 = 9180
		worldW, worldD     = 5200.0, 3200.0
		texSize            = 1024
	)
	s := &Scene{
		Name:         "flight",
		Width:        div(1280, scale),
		Height:       div(1024, scale),
		DefaultOrder: 0, // horizontal
		Light: &pipeline.DirectionalLight{
			Dir:     vecmath.Vec3{X: -0.4, Y: -1, Z: -0.2},
			Ambient: 0.45,
			Diffuse: 0.55,
		},
	}

	// Rugged terrain: overlapping ridges plus deterministic noise. The
	// frequent slope changes fragment the Mip Map level-of-detail exactly
	// as the paper describes for this scene.
	height := func(gu, gv float64) float64 {
		h := 260*math.Sin(gu*11)*math.Cos(gv*9) +
			170*math.Sin(gu*23+1.3)*math.Sin(gv*17+0.4) +
			380*math.Sin(gu*5+gv*4)
		return 450 + h
	}

	ts := texDiv(texSize, scale)
	patchW := worldW / patchesX
	patchD := worldD / patchesZ
	texID := 0
	for pz := 0; pz < patchesZ; pz++ {
		for px := 0; px < patchesX; px++ {
			// Patch-local height function in global coordinates, so
			// terrain is continuous across patch seams.
			ox := float64(px) * patchW
			oz := float64(pz) * patchD
			h := func(u, v float64) float64 {
				return height((ox+u*patchW)/worldW, (oz+v*patchD)/worldD)
			}
			m := geom.Grid(quadsX, quadsZ, patchW, patchD, h, texID)
			s.Draws = append(s.Draws, Draw{
				Mesh:  m,
				Model: vecmath.Translate(vecmath.Vec3{X: ox, Z: oz}),
			})
			s.Mips = append(s.Mips, texture.BuildMipMap(
				texture.Noise(ts, ts, 0xF11907+uint64(texID))))
			texID++
		}
	}

	// Low flight over the terrain looking toward the horizon: nearby
	// ground is magnified, distant ridges collapse through many Mip
	// levels.
	eye := vecmath.Vec3{X: worldW * 0.5, Y: height(0.5, 0.96) + 220, Z: worldD * 0.96}
	at := vecmath.Vec3{X: worldW * 0.48, Y: 0, Z: worldD * 0.3}
	fovy := math.Pi / 2.7
	aspect := float64(s.Width) / float64(s.Height)
	s.Camera = pipeline.LookAtCamera(eye, at, vecmath.Vec3{Y: 1}, fovy, aspect, 2, 20000)
	// Motion path: fly forward at 200 m/s toward the look-at point.
	dir := at.Sub(eye).Normalize()
	s.CameraPath = func(t float64) pipeline.Camera {
		off := dir.Scale(200 * t)
		return pipeline.LookAtCamera(eye.Add(off), at.Add(off), vecmath.Vec3{Y: 1},
			fovy, aspect, 2, 20000)
	}
	return s
}
