package scenes

import (
	"math"

	"texcache/internal/geom"
	"texcache/internal/pipeline"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

// Goblet synthesizes the Goblet benchmark: a single texture wrapped
// around a goblet-shaped surface of revolution built from many small
// triangles.
//
// Table 4.1 targets: 800x800 pixels, 7200 triangles (small: average 41
// px, 25x14), 1 texture (1.4 MB = a 512x512 Mip Map), repetition ~1.1,
// with level-of-detail spikes where the curved surface turns edge-on to
// the viewer.
func Goblet(scale int) *Scene {
	s := &Scene{
		Name:         "goblet",
		Width:        div(800, scale),
		Height:       div(800, scale),
		DefaultOrder: 0, // horizontal
		Light: &pipeline.DirectionalLight{
			Dir:     vecmath.Vec3{X: -0.5, Y: -0.7, Z: -0.6},
			Ambient: 0.5,
			Diffuse: 0.5,
		},
	}

	ts := texDiv(512, scale)
	s.Mips = []*texture.MipMap{texture.BuildMipMap(texture.Checker(ts, ts, 16,
		texture.Texel{R: 210, G: 180, B: 90, A: 255},
		texture.Texel{R: 120, G: 70, B: 30, A: 255}))}

	// Classic goblet profile: flared base, thin stem, wide bowl.
	profile := func(t float64) (r, y float64) {
		switch {
		case t < 0.12: // base plate
			return 0.55 - 1.5*t, t * 0.5
		case t < 0.45: // stem
			return 0.12 + 0.05*math.Sin((t-0.12)*9), 0.06 + (t-0.12)*1.2
		default: // bowl
			u := (t - 0.45) / 0.55
			return 0.16 + 0.55*math.Sin(u*math.Pi*0.62), 0.46 + u*0.9
		}
	}
	// 60 rings x 60 segments = 7200 triangles; u wraps 1.1 times around
	// the circumference for the paper's repetition factor.
	s.Draws = []Draw{{
		Mesh:  geom.Lathe(profile, 60, 60, 1.1, 0),
		Model: vecmath.Identity(),
	}}

	eye := vecmath.Vec3{X: 0.53, Y: 1.17, Z: 2.24}
	at := vecmath.Vec3{Y: 0.65}
	s.Camera = pipeline.LookAtCamera(eye, at, vecmath.Vec3{Y: 1}, math.Pi/3.2, 1, 0.1, 50)
	// Motion path: orbit the goblet at 0.4 rad/s.
	s.CameraPath = func(t float64) pipeline.Camera {
		rot := vecmath.RotateY(0.4 * t)
		return pipeline.LookAtCamera(rot.TransformPoint(eye), at, vecmath.Vec3{Y: 1},
			math.Pi/3.2, 1, 0.1, 50)
	}
	return s
}
