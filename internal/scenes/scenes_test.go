package scenes

import (
	"reflect"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/texture"
)

// Scenes are built at scale 8 in tests (screens of ~160x128) to keep
// runtime low; the structural characteristics are scale-invariant.
const testScale = 8

func TestBuildersCoverNames(t *testing.T) {
	b := Builders()
	for _, name := range Names() {
		if b[name] == nil {
			t.Errorf("missing builder for %q", name)
		}
	}
	if len(b) != len(Names()) {
		t.Errorf("builders/names mismatch: %d vs %d", len(b), len(Names()))
	}
	if _, err := ByNameChecked("nope", 1); err == nil {
		t.Error("unknown scene should error")
	}
}

// TestTable41Characteristics pins the scale-invariant Table 4.1 columns:
// triangle counts and texture counts per scene.
func TestTable41Characteristics(t *testing.T) {
	want := map[string]struct {
		tris, texs int
	}{
		"flight": {9180, 15}, // paper: 9152, 15
		"town":   {5298, 51}, // paper: 5317, 51
		"guitar": {720, 8},   // paper: 719, 8
		"goblet": {7200, 1},  // paper: 7200, 1
	}
	for name, w := range want {
		s := byName(t, name, testScale)
		if got := s.Triangles(); got != w.tris {
			t.Errorf("%s: %d triangles, want %d", name, got, w.tris)
		}
		if got := len(s.Mips); got != w.texs {
			t.Errorf("%s: %d textures, want %d", name, got, w.texs)
		}
	}
}

func TestResolutionsMatchPaper(t *testing.T) {
	for _, c := range []struct {
		name string
		w, h int
	}{
		{"flight", 1280, 1024}, {"town", 1280, 1024},
		{"guitar", 800, 800}, {"goblet", 800, 800},
	} {
		s := byName(t, c.name, 1)
		if s.Width != c.w || s.Height != c.h {
			t.Errorf("%s at scale 1: %dx%d, want %dx%d", c.name, s.Width, s.Height, c.w, c.h)
		}
		s8 := byName(t, c.name, testScale)
		if s8.Width != c.w/testScale {
			t.Errorf("%s at scale %d: width %d", c.name, testScale, s8.Width)
		}
	}
}

func TestTownIsVerticalOthersHorizontal(t *testing.T) {
	for _, name := range Names() {
		s := byName(t, name, testScale)
		want := raster.RowMajor
		if name == "town" {
			want = raster.ColumnMajor
		}
		if s.DefaultOrder != want {
			t.Errorf("%s default order = %v, want %v", name, s.DefaultOrder, want)
		}
		if s.DefaultTraversal().Order != want || s.DefaultTraversal().Tiled() {
			t.Errorf("%s default traversal wrong: %+v", name, s.DefaultTraversal())
		}
	}
}

func TestScenesRenderFragments(t *testing.T) {
	for _, name := range Names() {
		s := byName(t, name, testScale)
		r, err := s.Render(RenderOptions{
			Layout:    texture.LayoutSpec{Kind: texture.NonBlockedKind},
			Traversal: s.DefaultTraversal(),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Stats.FragmentsTextured == 0 {
			t.Errorf("%s rendered no textured fragments", name)
		}
		// Every scene covers a substantial part of its screen.
		cov := float64(r.FB.CoveredPixels()) / float64(s.Width*s.Height)
		if cov < 0.15 {
			t.Errorf("%s covers only %.0f%% of the screen", name, 100*cov)
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	s1 := byName(t, "goblet", testScale)
	s2 := byName(t, "goblet", testScale)
	spec := texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}
	t1, _, err := s1.Trace(spec, s1.DefaultTraversal())
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := s2.Trace(spec, s2.DefaultTraversal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1.Addrs, t2.Addrs) {
		t.Error("scene tracing is not deterministic")
	}
	if t1.Len() == 0 {
		t.Error("empty trace")
	}
}

func TestRenderRejectsBadLayout(t *testing.T) {
	s := byName(t, "goblet", testScale)
	_, err := s.Render(RenderOptions{
		Layout: texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 3},
	})
	if err == nil {
		t.Error("invalid layout spec accepted")
	}
}

func TestTexturesLaidOutConsecutively(t *testing.T) {
	// The arena places textures in ID order with no overlap, mirroring
	// consecutive malloc() placement.
	s := byName(t, "town", testScale)
	r, err := s.Render(RenderOptions{
		Layout:    texture.LayoutSpec{Kind: texture.NonBlockedKind},
		Traversal: s.DefaultTraversal(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var prevEnd uint64
	for i, tex := range r.Textures {
		if tex.Layout.Base() < prevEnd {
			t.Fatalf("texture %d overlaps previous (base %d < %d)", i, tex.Layout.Base(), prevEnd)
		}
		prevEnd = tex.Layout.Base() + tex.Layout.SizeBytes()
	}
}

func TestTextureRepetitionByScene(t *testing.T) {
	// The scenes are synthesized to the paper's repetition factors:
	// town ~2.9, guitar ~1.7, goblet ~1.1, flight ~1.0. Verified through
	// the UV ranges of the generated geometry.
	maxUV := func(name string) float64 {
		s := byName(t, name, testScale)
		m := 0.0
		for _, d := range s.Draws {
			for _, tr := range d.Mesh.Tris {
				for _, v := range tr.V {
					if v.UV.X > m {
						m = v.UV.X
					}
					if v.UV.Y > m {
						m = v.UV.Y
					}
				}
			}
		}
		return m
	}
	if got := maxUV("flight"); got > 1.001 {
		t.Errorf("flight UVs exceed 1: %v", got)
	}
	if got := maxUV("goblet"); got < 1.05 || got > 1.2 {
		t.Errorf("goblet max UV = %v, want ~1.1", got)
	}
	if got := maxUV("guitar"); got < 1.5 || got > 1.8 {
		t.Errorf("guitar max UV = %v, want ~1.6", got)
	}
	if got := maxUV("town"); got < 1.5 {
		t.Errorf("town max UV = %v, want >= 1.7-ish", got)
	}
}

func TestStorageScalesWithTextureSizes(t *testing.T) {
	full := byName(t, "goblet", 1).TextureStorageBytes()
	small := byName(t, "goblet", testScale).TextureStorageBytes()
	if full <= small {
		t.Errorf("storage did not scale: full=%d small=%d", full, small)
	}
	// Goblet at full scale: a 512x512 Mip Map is ~1.33 * 1MB.
	if full < 1<<20 || full > 2<<20 {
		t.Errorf("goblet full storage = %.2f MB, want ~1.4", float64(full)/(1<<20))
	}
}

func TestSinkReceivesTrace(t *testing.T) {
	s := byName(t, "guitar", testScale)
	var n int
	_, err := s.Render(RenderOptions{
		Layout:    texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 4},
		Traversal: s.DefaultTraversal(),
		Sink:      cache.SinkFunc(func(uint64) { n++ }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("sink received no accesses")
	}
}

func TestCameraPathMovesEveryScene(t *testing.T) {
	for _, name := range Names() {
		s := byName(t, name, testScale)
		if s.CameraPath == nil {
			t.Errorf("%s has no camera path", name)
			continue
		}
		c0 := s.CameraAt(0)
		c1 := s.CameraAt(0.5)
		if c0.View == c1.View {
			t.Errorf("%s camera did not move", name)
		}
		// t=0 must match the canonical frame.
		if c0.View != s.Camera.View || c0.Proj != s.Camera.Proj {
			t.Errorf("%s CameraAt(0) differs from the static camera", name)
		}
	}
}

func TestRenderAtTimeProducesDifferentTrace(t *testing.T) {
	s := byName(t, "goblet", testScale)
	spec := texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}
	tr0 := cache.NewTrace(0)
	if _, err := s.Render(RenderOptions{Layout: spec, Traversal: s.DefaultTraversal(), Sink: tr0}); err != nil {
		t.Fatal(err)
	}
	tr1 := cache.NewTrace(0)
	if _, err := s.Render(RenderOptions{Layout: spec, Traversal: s.DefaultTraversal(), Sink: tr1, Time: 0.5}); err != nil {
		t.Fatal(err)
	}
	if tr1.Len() == 0 {
		t.Fatal("animated frame rendered nothing")
	}
	if reflect.DeepEqual(tr0.Addrs, tr1.Addrs) {
		t.Error("animated frame produced an identical trace")
	}
}

func TestLayoutsMatchRenderPlacement(t *testing.T) {
	s := byName(t, "town", testScale)
	spec := texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}
	layouts, err := s.Layouts(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Render(RenderOptions{Layout: spec, Traversal: s.DefaultTraversal()})
	if err != nil {
		t.Fatal(err)
	}
	if len(layouts) != len(r.Textures) {
		t.Fatalf("layout count %d != texture count %d", len(layouts), len(r.Textures))
	}
	for i := range layouts {
		if layouts[i].Base() != r.Textures[i].Layout.Base() {
			t.Errorf("texture %d: Layouts base %d != render base %d",
				i, layouts[i].Base(), r.Textures[i].Layout.Base())
		}
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := newRand(42), newRand(42)
	for i := 0; i < 100; i++ {
		if a.float() != b.float() {
			t.Fatal("rand not deterministic")
		}
	}
	v := newRand(42).float()
	if v < 0 || v >= 1 {
		t.Errorf("rand out of range: %v", v)
	}
}

// byName builds the named scene, failing the test for unknown names.
func byName(t *testing.T, name string, scale int) *Scene {
	t.Helper()
	s, err := ByNameChecked(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
