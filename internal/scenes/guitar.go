package scenes

import (
	"math"

	"texcache/internal/geom"
	"texcache/internal/pipeline"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

// Guitar synthesizes the Guitar benchmark: a few large, flat, textured
// surfaces (guitar body, neck, background panels) that are NOT uniformly
// oriented on screen.
//
// Table 4.1 targets: 800x800 pixels, 719 triangles (large: average 1867
// px, 72x94), 8 textures (4.9 MB), repetition ~1.7. The arbitrary
// in-plane rotations mean neither horizontal nor vertical rasterization
// aligns with texture storage (Section 5.2.3).
func Guitar(scale int) *Scene {
	s := &Scene{
		Name:         "guitar",
		Width:        div(800, scale),
		Height:       div(800, scale),
		DefaultOrder: 0, // horizontal
		Light: &pipeline.DirectionalLight{
			Dir:     vecmath.Vec3{X: 0.2, Y: -0.4, Z: -1},
			Ambient: 0.6,
			Diffuse: 0.4,
		},
	}

	// 8 textures: four 512x512 wood-like noise, four 256x256 patterns.
	for i := 0; i < 8; i++ {
		ts := texDiv(512, scale)
		if i >= 4 {
			ts = texDiv(256, scale)
		}
		var im *texture.Image
		if i%2 == 0 {
			im = texture.Noise(ts, ts, 0x6017A2+uint64(i))
		} else {
			im = texture.Gradient(ts, ts,
				texture.Texel{R: 180, G: 120, B: 60, A: 255},
				texture.Texel{R: 60, G: 30, B: 10, A: 255})
		}
		s.Mips = append(s.Mips, texture.BuildMipMap(im))
	}

	// panel builds a w x h rectangle tessellated into gx x gy quads with
	// UV repetition rep, rotated in the view plane by angle and placed at
	// (cx, cy, z).
	panel := func(w, h float64, gx, gy int, rep, angle, cx, cy, z float64, texID int) Draw {
		m := &geom.Mesh{}
		for j := 0; j < gy; j++ {
			for i := 0; i < gx; i++ {
				x0, x1 := -w/2+w*float64(i)/float64(gx), -w/2+w*float64(i+1)/float64(gx)
				y0, y1 := -h/2+h*float64(j)/float64(gy), -h/2+h*float64(j+1)/float64(gy)
				v := func(x, y float64) geom.Vertex {
					return geom.Vertex{
						Pos:    vecmath.Vec3{X: x, Y: y},
						Normal: vecmath.Vec3{Z: 1},
						UV: vecmath.Vec2{
							X: rep * (x + w/2) / w,
							Y: rep * (h/2 - y) / h,
						},
						Color: white,
					}
				}
				m.AddQuad(v(x0, y0), v(x1, y0), v(x1, y1), v(x0, y1), texID)
			}
		}
		model := vecmath.Translate(vecmath.Vec3{X: cx, Y: cy, Z: z}).
			Mul(vecmath.RotateZ(angle))
		return Draw{Mesh: m, Model: model}
	}

	// Eight panels at varied in-plane rotations, sized and tessellated to
	// land near 719 triangles of ~1867 px each. 8 panels totalling
	// 360 quads = 720 triangles.
	type p struct {
		w, h     float64
		gx, gy   int
		rep, ang float64
		cx, cy   float64
		z        float64
		tex      int
	}
	panels := []p{
		{3.4, 1.6, 10, 5, 1.6, 0.45, -0.2, 0.3, 0, 0},   // guitar body
		{0.8, 3.2, 3, 12, 1.6, 0.45, 1.3, 1.5, 0.05, 1}, // neck
		{2.0, 2.0, 7, 7, 1.6, -0.6, -1.5, -1.4, -0.3, 2},
		{2.2, 1.5, 8, 5, 1.6, 1.1, 1.7, -1.5, -0.4, 3},
		{1.7, 2.1, 6, 7, 1.6, -1.3, -1.9, 1.6, -0.5, 4},
		{1.8, 1.8, 6, 6, 1.6, 2.0, 2.0, 1.9, -0.6, 5},
		{2.4, 1.4, 8, 4, 1.6, -2.4, 0.3, -2.1, -0.7, 6},
		{1.5, 2.4, 5, 8, 1.6, 0.9, -0.3, 2.2, -0.8, 7},
		{1.9, 1.6, 7, 5, 1.6, -1.8, 1.1, 0.1, -0.9, 2},
	}
	// The zoom factor enlarges the whole composition so triangles reach
	// the paper's ~1867 px average; panel edges extending past the screen
	// keep the textured-fragment count at the Table 4.1 level.
	const zoom = 1.4
	for _, q := range panels {
		s.Draws = append(s.Draws, panel(zoom*q.w, zoom*q.h, q.gx, q.gy, q.rep, q.ang,
			zoom*q.cx, zoom*q.cy, q.z, q.tex))
	}

	s.Camera = pipeline.LookAtCamera(vecmath.Vec3{Z: 2.3}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
		math.Pi/2, 1, 0.2, 50)
	// Motion path: a slow dolly-and-pan over the still life.
	s.CameraPath = func(t float64) pipeline.Camera {
		eye := vecmath.Vec3{X: 0.3 * t, Y: 0.1 * t, Z: 2.3 - 0.2*t}
		return pipeline.LookAtCamera(eye, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
			math.Pi/2, 1, 0.2, 50)
	}
	return s
}
