package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// published guards expvar names: expvar.Publish panics on duplicates,
// and tests (or texsim re-runs in one process) may publish repeatedly.
var published sync.Map // name -> *Registry holder

// exportHolder lets a republished name track the latest registry instead
// of panicking in expvar.
type exportHolder struct {
	mu  sync.Mutex
	reg *Registry
}

func (h *exportHolder) snapshot() map[string]any {
	h.mu.Lock()
	r := h.reg
	h.mu.Unlock()
	return r.Snapshot()
}

// PublishExpvar exposes the registry's snapshot as the named expvar
// (visible at /debug/vars on any server with the expvar handler).
// Publishing the same name again rebinds it to the new registry rather
// than panicking.
func PublishExpvar(name string, r *Registry) {
	holder := &exportHolder{reg: r}
	if prev, loaded := published.LoadOrStore(name, holder); loaded {
		h := prev.(*exportHolder)
		h.mu.Lock()
		h.reg = r
		h.mu.Unlock()
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return holder.snapshot() }))
}

// Serve starts a debug HTTP server on addr exposing /debug/vars (expvar,
// including every registry published through PublishExpvar) and
// /debug/pprof. It returns the bound listener — pass ":0" to let the
// kernel pick a port and read the address back — and the server, whose
// Close shuts it down. The server runs on a background goroutine; serve
// errors after Close are discarded.
func Serve(addr string) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln, nil
}
