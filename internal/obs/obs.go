// Package obs is the simulator's observability layer: atomic counters,
// gauges and timers in a hierarchical named registry, a frame/experiment
// lifecycle event stream, and snapshot export through expvar plus an
// optional debug HTTP endpoint.
//
// Instrumented code is written against nil-safe handles: asking a nil
// *Registry for a metric returns a nil handle, and every method on a nil
// handle is a no-op. Code instrumented against Default() therefore
// compiles down to a pointer load and a branch when no registry is
// attached — nothing is allocated and no atomics run. Hot loops must
// never update metrics per element; they accumulate locally and flush
// once per pass, frame or chunk.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops), so handles from a detached registry
// cost one branch.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value that can move both ways (queue
// depths, busy workers, backlogs). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates durations: total elapsed time and the number of
// observations, enough to derive mean latency and rates. Nil-safe.
type Timer struct {
	count atomic.Uint64
	ns    atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.count.Add(1)
	t.ns.Add(int64(d))
}

// ObserveSince records the time elapsed since start.
func (t *Timer) ObserveSince(start time.Time) {
	if t == nil {
		return
	}
	t.Observe(time.Since(start))
}

// Count returns the number of observations.
func (t *Timer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Mean returns the average observed duration (0 with no observations).
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return t.Total() / time.Duration(n)
}

// Registry holds named metrics. Sub returns a child registry whose
// metric names are prefixed with its path, so subsystems instrument
// themselves under their own namespace ("engine.experiments",
// "replay.addresses", ...). All lookup methods are safe on a nil
// receiver and return nil handles.
type Registry struct {
	prefix string // dotted path prefix including trailing ".", "" at root

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	subs     map[string]*Registry
	root     *Registry // shared metric maps + event handlers live here

	handlers atomic.Pointer[[]func(Event)]
}

// NewRegistry returns an empty root registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		subs:     map[string]*Registry{},
	}
	r.root = r
	return r
}

// Sub returns the child registry for name, creating it on first use.
// Metrics created through the child live in the root's flat namespace
// under "name." — Snapshot and expvar export see one dotted tree.
func (r *Registry) Sub(name string) *Registry {
	if r == nil {
		return nil
	}
	root := r.root
	full := r.prefix + name
	root.mu.Lock()
	defer root.mu.Unlock()
	s, ok := root.subs[full]
	if !ok {
		s = &Registry{prefix: full + ".", root: root}
		root.subs[full] = s
	}
	return s
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	root := r.root
	full := r.prefix + name
	root.mu.Lock()
	defer root.mu.Unlock()
	c, ok := root.counters[full]
	if !ok {
		c = &Counter{}
		root.counters[full] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	root := r.root
	full := r.prefix + name
	root.mu.Lock()
	defer root.mu.Unlock()
	g, ok := root.gauges[full]
	if !ok {
		g = &Gauge{}
		root.gauges[full] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	root := r.root
	full := r.prefix + name
	root.mu.Lock()
	defer root.mu.Unlock()
	t, ok := root.timers[full]
	if !ok {
		t = &Timer{}
		root.timers[full] = t
	}
	return t
}

// Snapshot returns every metric as a flat dotted-name map: counters as
// uint64, gauges as int64, timers as nested {count, total_ns, mean_ns}.
// Safe on a nil registry (returns an empty map) and under concurrent
// updates (values are atomic loads, not a consistent cut).
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	root := r.root
	root.mu.Lock()
	defer root.mu.Unlock()
	for name, c := range root.counters {
		out[name] = c.Value()
	}
	for name, g := range root.gauges {
		out[name] = g.Value()
	}
	for name, t := range root.timers {
		out[name] = map[string]any{
			"count":    t.Count(),
			"total_ns": int64(t.Total()),
			"mean_ns":  int64(t.Mean()),
		}
	}
	return out
}

// Names returns the sorted metric names of the snapshot, for stable
// summary output.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SummaryLine formats the registry's counters and gauges as one
// "name=value name=value" line in sorted name order, the end-of-run
// summary texsim prints. Timers render as their total duration.
func (r *Registry) SummaryLine() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(n)
		sb.WriteByte('=')
		switch v := snap[n].(type) {
		case map[string]any:
			sb.WriteString(time.Duration(v["total_ns"].(int64)).Round(time.Millisecond).String())
		case uint64:
			writeUint(&sb, v)
		case int64:
			if v < 0 {
				sb.WriteByte('-')
				writeUint(&sb, uint64(-v))
			} else {
				writeUint(&sb, uint64(v))
			}
		}
	}
	return sb.String()
}

// writeUint appends a base-10 rendering without fmt.
func writeUint(sb *strings.Builder, v uint64) {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	sb.Write(buf[i:])
}

// defaultReg is the process-wide registry instrumented code reads
// through Default(). Detached (nil) by default, so library users pay
// nothing unless they opt in.
var defaultReg atomic.Pointer[Registry]

// Attach installs r as the process-wide default registry. Attach(nil)
// detaches.
func Attach(r *Registry) {
	defaultReg.Store(r)
}

// Detach removes the default registry; instrumented code reverts to
// no-op handles.
func Detach() { defaultReg.Store(nil) }

// Default returns the attached registry, or nil when detached. The load
// is a single atomic pointer read, cheap enough for per-call (never
// per-element) use on hot paths.
func Default() *Registry { return defaultReg.Load() }
