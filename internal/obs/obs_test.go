package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every operation on a nil registry and its nil handles must no-op.
	r.Counter("c").Add(3)
	r.Counter("c").Inc()
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-2)
	r.Timer("t").Observe(time.Second)
	r.Timer("t").ObserveSince(time.Now())
	r.Sub("s").Counter("c").Inc()
	r.Emit("experiment.start", "fig5.2", 0)
	r.OnEvent(func(Event) { t.Error("handler registered on nil registry") })
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if len(r.Snapshot()) != 0 {
		t.Errorf("nil snapshot = %v", r.Snapshot())
	}
	if s := r.SummaryLine(); s != "" {
		t.Errorf("nil summary = %q", s)
	}
}

func TestCountersGaugesTimers(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	if r.Counter("hits") != c {
		t.Error("counter handle not memoized")
	}

	g := r.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Errorf("gauge = %d, want 3", g.Value())
	}

	tm := r.Timer("run")
	tm.Observe(2 * time.Second)
	tm.Observe(4 * time.Second)
	if tm.Count() != 2 || tm.Total() != 6*time.Second || tm.Mean() != 3*time.Second {
		t.Errorf("timer = count %d total %v mean %v", tm.Count(), tm.Total(), tm.Mean())
	}
}

func TestHierarchy(t *testing.T) {
	r := NewRegistry()
	r.Sub("engine").Counter("experiments").Add(4)
	r.Sub("engine").Sub("trace_cache").Counter("renders").Inc()
	if r.Sub("engine") != r.Sub("engine") {
		t.Error("sub registry not memoized")
	}
	snap := r.Snapshot()
	if snap["engine.experiments"] != uint64(4) {
		t.Errorf("snapshot[engine.experiments] = %v", snap["engine.experiments"])
	}
	if snap["engine.trace_cache.renders"] != uint64(1) {
		t.Errorf("snapshot[engine.trace_cache.renders] = %v", snap["engine.trace_cache.renders"])
	}
}

func TestSummaryLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Gauge("a").Set(-1)
	r.Timer("c").Observe(1500 * time.Millisecond)
	got := r.SummaryLine()
	want := "a=-1 b=2 c=1.5s"
	if got != want {
		t.Errorf("summary = %q, want %q", got, want)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Sub("load").Counter("n")
			for j := 0; j < per; j++ {
				c.Inc()
				r.Gauge("g").Add(1)
				r.Gauge("g").Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := r.Sub("load").Counter("n").Value(); v != goroutines*per {
		t.Errorf("counter = %d, want %d", v, goroutines*per)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Errorf("gauge = %d, want 0", v)
	}
}

func TestEvents(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var got []Event
	r.OnEvent(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	// Sub-registry emits reach root handlers.
	r.Sub("engine").Emit("experiment.start", "fig5.2", 0)
	r.Emit("experiment.done", "fig5.2", 42)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("got %d events, want 2", len(got))
	}
	if got[0].Kind != "experiment.start" || got[0].Name != "fig5.2" {
		t.Errorf("event 0 = %+v", got[0])
	}
	if got[1].Value != 42 || got[1].Time.IsZero() {
		t.Errorf("event 1 = %+v", got[1])
	}
}

func TestAttachDetach(t *testing.T) {
	defer Detach()
	if Default() != nil {
		t.Fatal("default registry attached at test start")
	}
	r := NewRegistry()
	Attach(r)
	if Default() != r {
		t.Error("Default() did not return the attached registry")
	}
	Default().Counter("x").Inc()
	Detach()
	if Default() != nil {
		t.Error("Detach left a registry attached")
	}
	// Instrumented code keeps working against the nil default.
	Default().Counter("x").Inc()
	if v := r.Counter("x").Value(); v != 1 {
		t.Errorf("counter = %d, want 1 (post-detach increment leaked)", v)
	}
}

func TestServeExposesExpvarAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("served").Add(9)
	PublishExpvar("texcache_test_serve", r)
	// Republishing rebinds instead of panicking.
	r2 := NewRegistry()
	r2.Counter("served").Add(11)
	PublishExpvar("texcache_test_serve", r2)

	srv, ln, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	var snap map[string]any
	if err := json.Unmarshal(vars["texcache_test_serve"], &snap); err != nil {
		t.Fatalf("registry var missing: %v", err)
	}
	if snap["served"] != float64(11) {
		t.Errorf("served = %v, want 11 (from the rebound registry)", snap["served"])
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	pp, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(pp), "goroutine") {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}
