package obs

import "time"

// Event is one lifecycle notification: an experiment starting or
// finishing, a frame rendered, a batch completing. Events are for
// low-frequency milestones — per-frame and per-experiment, never
// per-texel.
type Event struct {
	// Kind names the lifecycle point, dotted like metric names:
	// "experiment.start", "experiment.done", "frame.rendered",
	// "batch.done".
	Kind string
	// Name identifies the subject (experiment ID, scene name).
	Name string
	// Value carries an optional payload: elapsed nanoseconds for done
	// events, frame index for frame events.
	Value int64
	// Time is when the event was emitted.
	Time time.Time
}

// OnEvent registers a handler for every subsequent Emit. Handlers run
// synchronously on the emitting goroutine and must be fast and
// concurrency-safe. No-op on a nil registry.
func (r *Registry) OnEvent(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	root := r.root
	root.mu.Lock()
	defer root.mu.Unlock()
	old := root.handlers.Load()
	var next []func(Event)
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, fn)
	root.handlers.Store(&next)
}

// Emit publishes one event to every registered handler. On a nil
// registry, or with no handlers, it is a branch and an atomic load —
// cheap enough for per-frame use.
func (r *Registry) Emit(kind, name string, value int64) {
	if r == nil {
		return
	}
	hs := r.root.handlers.Load()
	if hs == nil || len(*hs) == 0 {
		return
	}
	e := Event{Kind: kind, Name: name, Value: value, Time: time.Now()}
	for _, fn := range *hs {
		fn(e)
	}
}
